// Benchmark harness: one target per table/figure of the paper's evaluation.
// Each benchmark regenerates its artifact end to end (simulations included)
// through the sweep engine and reports domain-specific metrics alongside
// the usual ns/op. Run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// to regenerate everything exactly once; cmd/experiments prints the same
// artifacts in human-readable form.
package speedupstack

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

// newEngine builds a fresh sweep engine per benchmark so memoized cells do
// not leak between b.N iterations (the first iteration pays for
// everything; -benchtime=1x is the intended mode).
func newEngine() *exp.Engine {
	return exp.NewEngine(sim.Default(), exp.WithWorkers(runtime.NumCPU()))
}

var benchCtx = context.Background()

// BenchmarkFig1SpeedupCurves regenerates Figure 1: speedup as a function of
// the thread count for blackscholes, facesim and cholesky. It doubles as
// the CI smoke target for the full figure path (-benchtime=1x).
func BenchmarkFig1SpeedupCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := exp.Figure1(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatCurves(curves))
			last := curves[0].Points[len(curves[0].Points)-1]
			b.ReportMetric(last.Speedup, "blackscholes-x16-speedup")
		}
	}
}

// BenchmarkValidationErrorTable regenerates the Section 6 accuracy table:
// mean absolute estimation error at 2, 4, 8 and 16 threads (paper: 3.0,
// 3.4, 2.8, 5.1 %).
func BenchmarkValidationErrorTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Validation(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatValidation(rows))
			for _, r := range rows {
				b.ReportMetric(r.MeanAbsErrPct, fmt.Sprintf("mean-abs-err-pct-%dT", r.Threads))
			}
		}
	}
}

// BenchmarkFig4ActualVsEstimated regenerates Figure 4: actual versus
// estimated speedup for all 28 benchmarks at 2-16 threads.
func BenchmarkFig4ActualVsEstimated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure4(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "benchmark-points")
		}
	}
}

// BenchmarkFig5SpeedupStacks regenerates Figure 5: the speedup stacks of
// blackscholes, facesim and cholesky for 2-16 threads.
func BenchmarkFig5SpeedupStacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bars, err := exp.Figure5(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", stack.Table(bars))
		}
	}
}

// BenchmarkFig6ClassificationTree regenerates Figure 6: the benchmark
// classification tree at 16 threads.
func BenchmarkFig6ClassificationTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure6(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			good := 0
			yieldFirst := 0
			for _, r := range rows {
				if r.Class == stack.ClassGood {
					good++
				}
				if len(r.Components) > 0 && r.Components[0] == stack.CompYielding {
					yieldFirst++
				}
			}
			b.ReportMetric(float64(good), "good-scaling-benchmarks")
			b.ReportMetric(float64(yieldFirst), "yield-dominant-benchmarks")
		}
	}
}

// BenchmarkFig7FerretCores regenerates Figure 7: ferret speedup versus core
// count with threads=cores and with 16 software threads.
func BenchmarkFig7FerretCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure7(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatFigure7(rows))
			b.ReportMetric(rows[3].Threads16, "ferret-16t-16c-speedup")
		}
	}
}

// BenchmarkFig8LLCInterference regenerates Figure 8: negative/positive/net
// LLC interference for the positively-sharing benchmarks at 16 cores.
func BenchmarkFig8LLCInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure8(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatInterference(rows))
		}
	}
}

// BenchmarkFig9LLCSizeSweep regenerates Figure 9: cholesky interference
// components for 2/4/8/16 MB LLCs.
func BenchmarkFig9LLCSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure9(benchCtx, newEngine())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.FormatInterference(rows))
			b.ReportMetric(rows[0].Net, "net-interference-2MB")
			b.ReportMetric(rows[3].Net, "net-interference-16MB")
		}
	}
}

// BenchmarkFullEvaluationSharedEngine regenerates every figure against one
// shared engine, the cmd/experiments "all" path: cross-figure dedup means
// the whole evaluation costs little more than its unique cells.
func BenchmarkFullEvaluationSharedEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := newEngine()
		if _, err := exp.Figure1(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Validation(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Figure4(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Figure5(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Figure6(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Figure7(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Figure8(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if _, err := exp.Figure9(benchCtx, e); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			st := e.Stats()
			b.ReportMetric(float64(st.CellRuns), "unique-cell-sims")
			b.ReportMetric(float64(st.CellHits), "memo-hits")
		}
	}
}

// BenchmarkHardwareCost regenerates the Section 4.7 hardware budget.
func BenchmarkHardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hw := HardwareCost()
		if i == 0 {
			b.ReportMetric(float64(hw.PerCoreBytes()), "bytes-per-core")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed on one
// 16-thread facesim run plus its sequential reference (an engine
// microbenchmark, not a paper artifact). The runner is rebuilt per
// iteration: a shared runner would serve every iteration after the first
// from the sweep engine's memo.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench := mustBench(b, "facesim_parsec_small")
	var ops uint64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(sim.Default())
		out, err := r.Run(bench, 16)
		if err != nil {
			b.Fatal(err)
		}
		ops += r.Engine().Stats().SimulatedOps
		if i == 0 {
			b.ReportMetric(float64(out.Result.TotalInstrs), "instructions")
		}
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "sim-ops/sec")
}

// sweepAllCells declares the fast-mode acceptance grid: every paper
// analogue at 16 threads. Deliberately All(), not Names(): the registry of
// lookup names also carries the contention-pattern suite, and growing that
// suite must not move the acceptance baselines.
func sweepAllCells() []exp.Cell {
	benches := workload.All()
	cells := make([]exp.Cell, len(benches))
	for i, b := range benches {
		cells[i] = exp.Cell{Bench: b.FullName(), Threads: 16}
	}
	return cells
}

// benchSweepAll runs the 28-analogue 16-thread sweep on a single worker in
// the given mode — the exact/fast pair below is the wall-clock evidence for
// the fast-mode speedup target (compare the two with benchstat).
func benchSweepAll(b *testing.B, mode sim.Mode) {
	for i := 0; i < b.N; i++ {
		e := exp.NewEngine(sim.Default().WithMode(mode), exp.WithWorkers(1))
		outs, err := e.Sweep(benchCtx, sweepAllCells())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(outs)), "cells")
		}
	}
}

// BenchmarkSweepAll16TExact is the exact-mode half of the fast-mode
// speedup comparison: 28 analogues x16 threads, one worker, full detail.
func BenchmarkSweepAll16TExact(b *testing.B) { benchSweepAll(b, sim.ModeExact) }

// BenchmarkSweepAll16TFast is the sampled half: the same sweep in ModeFast
// (1-in-2^FastSetShift detailed LLC sets, predicted remainder). The paper's
// acceptance target is >= 3x over BenchmarkSweepAll16TExact.
func BenchmarkSweepAll16TFast(b *testing.B) { benchSweepAll(b, sim.ModeFast) }

// BenchmarkCellIntraRunShards measures intra-run core parallelism on one
// 16-thread cell: the per-core accounting (ATD walks) sharded across OS
// threads within a single sim.Run. Compare with BenchmarkSimulatorThroughput
// (the unsharded single-cell path); results are byte-identical for any
// shard count.
func BenchmarkCellIntraRunShards(b *testing.B) {
	shards := runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		e := exp.NewEngine(sim.Default(), exp.WithWorkers(1), exp.WithIntraRunShards(shards))
		outs, err := e.Sweep(benchCtx, []exp.Cell{{Bench: "facesim_parsec_small", Threads: 16}})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(outs[0].Actual, "actual-speedup")
		}
	}
}

// mustBench fetches a registered benchmark or fails the test.
func mustBench(b *testing.B, name string) workload.Benchmark {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	return w
}
