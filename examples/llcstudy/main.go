// LLC study: reproduce the paper's Section 7.3 analysis.
//
// Compares negative, positive and net LLC interference across the
// benchmarks that share data (Figure 8), then sweeps the LLC size for
// cholesky (Figure 9) to show that growing the cache shrinks negative
// interference while positive sharing persists — eventually making cache
// sharing a net win.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	e := exp.NewEngine(sim.Default())

	fmt.Println("LLC interference components at 16 cores (speedup units):")
	rows, err := exp.Figure8(ctx, e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatInterference(rows))

	fmt.Println("\ncholesky vs LLC size (negative shrinks, positive persists):")
	sweep, err := exp.Figure9(ctx, e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatInterference(sweep))

	fmt.Println("\nreading: net > 0 means sharing the LLC costs performance;")
	fmt.Println("net < 0 means inter-thread reuse outweighs the eviction losses.")
}
