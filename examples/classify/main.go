// Classify: reproduce the paper's Figure 6 workflow on a benchmark subset.
//
// Runs a set of benchmarks at 16 threads, classifies each into
// good/moderate/poor scaling, and prints the dominant speedup-stack
// components — the tree-style workload characterization the paper proposes
// in Section 7.2.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel simulations")
	flag.Parse()

	e := exp.NewEngine(sim.Default(), exp.WithWorkers(*workers))
	rows, err := exp.Figure6(context.Background(), e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.FormatFigure6(rows))

	// The paper's headline observation: few benchmarks scale well.
	good := 0
	for _, row := range rows {
		if row.Class == "good" {
			good++
		}
	}
	fmt.Printf("\n%d of %d benchmarks reach >=10x on 16 cores (paper: 5 of 28)\n",
		good, len(rows))
}
