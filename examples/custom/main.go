// Custom workload: build your own benchmark analogue and measure its
// speedup stack at several thread counts.
//
// The workload below is a lock-heavy data-parallel kernel with a skewed
// work distribution — the kind of program whose speedup curve alone would
// not reveal whether synchronization, imbalance or the memory system is at
// fault. The speedup stack separates them.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

func main() {
	spec := workload.Spec{
		Name:  "mykernel",
		Suite: "custom",
		Kind:  workload.KindDataParallel,

		ArrayBytes:     6 << 20, // 6 MB working set, thrashes a 2 MB LLC
		SweepsPerPhase: 2,       // temporal reuse -> LLC interference visible
		Phases:         2,
		InstrPerAccess: 900,

		StoreFrac:            0.2,
		EffectiveParallelism: 7, // skewed work: ~7 useful threads

		CSPerThreadPerPhase: 50, // critical sections on 4 locks
		CSInstr:             800,
		NumLocks:            4,

		OverheadFrac: 0.05,
		Seed:         42,
	}

	bench := workload.Benchmark{Spec: spec}
	runner := exp.NewRunner(sim.Default())

	var bars []stack.Bar
	for _, threads := range []int{2, 4, 8, 16} {
		out, err := runner.Run(bench, threads)
		if err != nil {
			log.Fatal(err)
		}
		bars = append(bars, stack.Bar{
			Label: fmt.Sprintf("mykernel x%d", threads),
			Stack: out.Stack,
		})
		fmt.Printf("threads=%2d  actual=%5.2fx  estimated=%5.2fx  bottlenecks=%v\n",
			threads, out.Actual, out.Estimated, stack.TopComponents(out.Stack, 3))
	}
	fmt.Println()
	fmt.Print(stack.Render(bars, 64))
	fmt.Println()
	fmt.Print(stack.Table(bars))
}
