// Quickstart: measure one benchmark's speedup stack and print it.
//
// This is the library's 30-second tour: pick a benchmark analogue, run it
// at 16 threads against its single-threaded reference, and look at the
// stack to see *why* it does not scale 16x.
package main

import (
	"fmt"
	"log"

	speedupstack "repro"
)

func main() {
	fmt.Println("available benchmarks:")
	for i, name := range speedupstack.Benchmarks() {
		fmt.Printf("  %2d. %s\n", i+1, name)
	}
	fmt.Println()

	for _, bench := range []string{"blackscholes_parsec_medium", "facesim_parsec_medium", "cholesky_splash2"} {
		res, err := speedupstack.Measure(bench, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(speedupstack.Render(res))
		fmt.Printf("actual speedup %.2fx, estimated %.2fx, top bottlenecks: %v\n\n",
			res.Stack.ActualSpeedup, res.Stack.Estimated(),
			speedupstack.TopBottlenecks(res, 3))
	}

	hw := speedupstack.HardwareCost()
	fmt.Printf("accounting hardware: %d B/core (%d B interference + %d B spin table)\n",
		hw.PerCoreBytes(), hw.InterferenceBytes(), hw.SpinTableBytes)
}
