package speedupstack

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestIntervalSumInvariant pins the tentpole guarantee of time-resolved
// stacks across the whole registry: for every benchmark analogue at 1, 4
// and 16 threads, the per-interval integer components sum *exactly* (int64
// equality, no tolerance) to the series' aggregate, the intervals
// partition the run's ops and cycles, and the integer aggregate tracks the
// float estimator within its documented rounding bound.
func TestIntervalSumInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-registry interval sweep is not a -short test")
	}
	const intervals = 8
	e := exp.NewEngine(sim.Default(), exp.WithWorkers(runtime.NumCPU()))
	ctx := context.Background()

	type cellID struct {
		bench   string
		threads int
	}
	var cells []cellID
	for _, name := range workload.Names() {
		for _, n := range []int{1, 4, 16} {
			cells = append(cells, cellID{name, n})
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for _, c := range cells {
		wg.Add(1)
		go func(c cellID) {
			defer wg.Done()
			out, err := e.MeasureIntervals(ctx,
				exp.Request{Cell: exp.Cell{Bench: c.bench, Threads: c.threads}}, intervals)
			if err != nil {
				fail("%s x%d: %v", c.bench, c.threads, err)
				return
			}
			ts := out.Series
			if len(ts.Intervals) < 1 || len(ts.Intervals) > intervals+1 {
				fail("%s x%d: %d intervals for a target of %d", c.bench, c.threads, len(ts.Intervals), intervals)
				return
			}
			// The exact-sum invariant.
			var sum core.IntComponents
			var prevOps, prevCycle uint64
			for _, iv := range ts.Intervals {
				sum = sum.Add(iv.Components)
				if iv.StartOps != prevOps || iv.StartCycle != prevCycle {
					fail("%s x%d: interval %d does not continue its predecessor", c.bench, c.threads, iv.Index)
					return
				}
				prevOps, prevCycle = iv.EndOps, iv.EndCycle
			}
			if sum != ts.Aggregate {
				fail("%s x%d: interval sum != aggregate\nsum  %+v\naggr %+v", c.bench, c.threads, sum, ts.Aggregate)
				return
			}
			if prevOps != ts.TotalOps || prevCycle != ts.Tp {
				fail("%s x%d: intervals cover (%d ops, %d cycles) of a (%d, %d) run",
					c.bench, c.threads, prevOps, prevCycle, ts.TotalOps, ts.Tp)
				return
			}
			// The integer aggregate tracks the float estimator: the only
			// divergences are integer flooring (≤1 cycle per thread per
			// component; positive interference compounds it with the average
			// miss penalty, ≤ penalty+1 per thread).
			fc := ts.Stack.Components
			penalty := 0.0
			for i := range out.Result.PerThread {
				tc := &out.Result.PerThread[i]
				if tc.LLCLoadMisses > 0 {
					if p := float64(tc.StallLLCLoadMiss) / float64(tc.LLCLoadMisses); p > penalty {
						penalty = p
					}
				}
			}
			n := float64(c.threads)
			checks := []struct {
				name     string
				got      int64
				want, ab float64
			}{
				{"NegLLC", ts.Aggregate.NegLLC, fc.NegLLC, n},
				{"PosLLC", ts.Aggregate.PosLLC, fc.PosLLC, n * (penalty + 2)},
				{"NegMem", ts.Aggregate.NegMem, fc.NegMem, n},
				{"Spin", ts.Aggregate.Spin, fc.Spin, 0.5},
				{"Yield", ts.Aggregate.Yield, fc.Yield, 0.5},
				{"Imbalance", ts.Aggregate.Imbalance, fc.Imbalance, 0.5},
			}
			for _, ck := range checks {
				if math.Abs(float64(ck.got)-ck.want) > ck.ab {
					fail("%s x%d: integer %s = %d drifted from float %.2f (allowed ±%.1f)",
						c.bench, c.threads, ck.name, ck.got, ck.want, ck.ab)
				}
			}
		}(c)
	}
	wg.Wait()

	if st := e.Stats(); st.IntervalRuns != len(cells) {
		t.Errorf("expected %d interval simulations, engine ran %d", len(cells), st.IntervalRuns)
	}
}
